package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"nocdeploy/internal/obs"
	"nocdeploy/internal/service"
	"nocdeploy/internal/spec"
)

// testInstance is a small feasible instance the heuristic solves in
// microseconds.
func testInstance() spec.Instance {
	inst := spec.Instance{
		Platform: spec.Platform{Levels: []spec.VFLevel{
			{Voltage: 0.85, Freq: 0.5e9},
			{Voltage: 1.10, Freq: 1.0e9},
		}},
		Mesh:    spec.Mesh{W: 2, H: 1, Seed: 1},
		Horizon: 5.0,
	}
	for i := 0; i < 3; i++ {
		inst.Graph.Tasks = append(inst.Graph.Tasks, spec.Task{WCEC: 5e8, Deadline: 2.0})
	}
	for i := 0; i+1 < 3; i++ {
		inst.Graph.Edges = append(inst.Graph.Edges, spec.Edge{From: i, To: i + 1, Bytes: 32 << 10})
	}
	return inst
}

// startServer runs a real service behind httptest and returns a client
// that captures subcommand output.
func startServer(t *testing.T) (*client, *bytes.Buffer, func()) {
	t.Helper()
	svc := service.New(service.Config{})
	srv := httptest.NewServer(svc.Handler())
	var out bytes.Buffer
	c := &client{base: srv.URL, out: &out}
	return c, &out, func() {
		srv.Close()
		svc.Close()
	}
}

func writeInstanceFile(t *testing.T) string {
	t.Helper()
	b, err := json.Marshal(testInstance())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "instance.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestJobTraceEndToEnd is the CLI acceptance test: an async solve's job
// ID, fed to `deployctl job -trace`, yields a JSONL trace slice whose
// every event carries the request ID — solver events included.
func TestJobTraceEndToEnd(t *testing.T) {
	c, out, stop := startServer(t)
	defer stop()
	in := writeInstanceFile(t)

	if err := cmdSolve(c, []string{"-in", in, "-async"}); err != nil {
		t.Fatalf("async solve: %v", err)
	}
	var job struct {
		ID      string `json:"id"`
		Request string `json:"request"`
	}
	if err := json.Unmarshal(out.Bytes(), &job); err != nil {
		t.Fatalf("decoding job: %v (%s)", err, out.Bytes())
	}
	if job.ID == "" || job.Request == "" {
		t.Fatalf("job record incomplete: %+v", job)
	}

	// Poll until the job finishes (its req.done lands in the ring).
	deadline := time.Now().Add(5 * time.Second)
	for {
		out.Reset()
		if err := cmdJob(c, []string{job.ID}); err != nil {
			t.Fatal(err)
		}
		var st struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(out.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == "done" {
			break
		}
		if st.Status == "failed" || time.Now().After(deadline) {
			t.Fatalf("job state %q", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	out.Reset()
	if err := cmdJob(c, []string{"-trace", job.ID}); err != nil {
		t.Fatalf("job -trace: %v", err)
	}
	events, err := obs.ReadJSONL(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("trace output not JSONL: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace slice")
	}
	solverEvents := 0
	for _, e := range events {
		if e.Req != job.Request {
			t.Fatalf("event %s carries req %q, want %q", e.Kind, e.Req, job.Request)
		}
		switch e.Kind {
		case obs.ReqAdmit, obs.ReqStage, obs.ReqDone:
		default:
			solverEvents++
		}
	}
	if solverEvents == 0 {
		t.Fatal("trace slice has no solver events")
	}
}

func TestMetricsPromValidated(t *testing.T) {
	c, out, stop := startServer(t)
	defer stop()
	in := writeInstanceFile(t)
	if err := cmdSolve(c, []string{"-in", in, "-out", os.DevNull}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := cmdMetrics(c, []string{"-format", "prom"}); err != nil {
		t.Fatalf("metrics -format prom: %v", err)
	}
	fams, err := obs.ParsePrometheus(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("printed exposition does not parse: %v", err)
	}
	if _, ok := fams["queue_depth"]; !ok {
		t.Fatal("exposition missing queue_depth")
	}

	out.Reset()
	if err := cmdMetrics(c, []string{"-format", "json"}); err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatalf("json format not a snapshot: %v", err)
	}

	if err := cmdMetrics(c, []string{"-format", "xml"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestTopRendersFrames(t *testing.T) {
	c, out, stop := startServer(t)
	defer stop()
	in := writeInstanceFile(t)
	if err := cmdSolve(c, []string{"-in", in, "-out", os.DevNull}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := cmdTop(c, []string{"-n", "2", "-interval", "50ms", "-plain"}); err != nil {
		t.Fatalf("top: %v", err)
	}
	frame := out.String()
	for _, want := range []string{"requests", "queue", "cache", "stage", "p50", "p95", "p99", "e2e"} {
		if !strings.Contains(frame, want) {
			t.Fatalf("top frame missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "\x1b[") {
		t.Fatal("-plain frame contains ANSI escapes")
	}
}

func TestLoadPrintsServerOutcomes(t *testing.T) {
	c, out, stop := startServer(t)
	defer stop()
	in := writeInstanceFile(t)
	if err := cmdLoad(c, []string{"-in", in, "-n", "10", "-c", "2"}); err != nil {
		t.Fatalf("load: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "outcomes:") {
		t.Fatalf("load output missing outcomes line:\n%s", got)
	}
	// 10 identical requests: every one lands in ok/cached/coalesced.
	ok := map[string]bool{"ok": true, "cached": true, "coalesced": true}
	total := 0
	for _, line := range strings.Split(got, "\n") {
		rest, found := strings.CutPrefix(line, "outcomes:")
		if !found {
			continue
		}
		for _, part := range strings.Fields(rest) {
			name, count, found := strings.Cut(part, "×")
			if !found || !ok[name] {
				continue
			}
			n, err := strconv.Atoi(count)
			if err != nil {
				t.Fatalf("bad count %q in %q", count, line)
			}
			total += n
		}
	}
	if total != 10 {
		t.Fatalf("outcome deltas sum to %d, want 10:\n%s", total, got)
	}
}
