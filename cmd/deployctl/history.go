// Archive subcommands: history (list archived solves), report (markdown
// regression report over two cohorts) and advise (ask the advisor which
// solver it would pick). All three are thin clients of /v1/archive —
// the report is rendered locally by archive.BuildReport so the exact
// same renderer is testable offline against canned summaries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"nocdeploy/internal/archive"
	"nocdeploy/internal/spec"
)

// fetchSummaries lists archive record summaries matching the query.
func (c *client) fetchSummaries(q url.Values) ([]archive.Summary, error) {
	path := "/v1/archive"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	resp, err := c.get(path)
	if err != nil {
		return nil, err
	}
	got, err := drainBody(resp)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: %s: %s", resp.Status, got)
	}
	var recs []archive.Summary
	if err := json.Unmarshal(got, &recs); err != nil {
		return nil, fmt.Errorf("decoding archive listing: %w", err)
	}
	return recs, nil
}

func cmdHistory(c *client, args []string) error {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	n := fs.Int("n", 20, "most recent records to list (0 = all)")
	solver := fs.String("solver", "", "filter by solver")
	instance := fs.String("instance", "", "filter by instance hash (prefix ok)")
	outcome := fs.String("outcome", "", "filter by outcome: ok, cancelled, error, rejected")
	since := fs.String("since", "", "only records after this RFC3339 time or look-back duration (\"1h\")")
	asJSON := fs.Bool("json", false, "print the raw JSON summaries instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: deployctl history [-n N] [-solver S] [-instance H] [-outcome O] [-since T] [-json]")
	}
	q := url.Values{}
	if *n > 0 {
		q.Set("limit", strconv.Itoa(*n))
	}
	if *solver != "" {
		q.Set("solver", *solver)
	}
	if *instance != "" {
		q.Set("instance", *instance)
	}
	if *outcome != "" {
		q.Set("outcome", *outcome)
	}
	if *since != "" {
		q.Set("since", *since)
	}
	recs, err := c.fetchSummaries(q)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(c.out)
		enc.SetIndent("", "  ")
		return enc.Encode(recs)
	}
	tw := tabwriter.NewWriter(c.out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tTIME\tINSTANCE\tTASKS\tMESH\tSOLVER\tOUTCOME\tOBJECTIVE\tRUNTIME")
	for _, r := range recs {
		obj := "-"
		if r.Outcome == archive.OutcomeOK && r.Feasible {
			obj = fmt.Sprintf("%.6g", r.FinalObjective)
		}
		solver := r.Solver
		if r.Advised {
			solver += "*" // picked by solver=auto
		}
		hash := r.Hash
		if len(hash) > 12 {
			hash = hash[:12]
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%dx%d\t%s\t%s\t%s\t%.3fs\n",
			r.ID, r.Time.UTC().Format(time.RFC3339), hash, r.Tasks,
			r.MeshW, r.MeshH, solver, r.Outcome, obj, r.RuntimeSeconds)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Fprintln(c.out, "(no archived solves match)")
	}
	return nil
}

func cmdReport(c *client, args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	solvers := fs.String("solvers", "", "compare two solvers: A,B")
	split := fs.String("split", "", "compare before/after this RFC3339 time")
	window := fs.Duration("window", 0, "compare the last D against everything before it")
	rows := fs.Int("rows", 0, "per-instance table rows (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: deployctl report [-solvers A,B | -split T | -window D] [-rows N]")
	}
	var o archive.ReportOptions
	o.MaxRows = *rows
	switch {
	case *solvers != "":
		parts := strings.Split(*solvers, ",")
		if len(parts) != 2 {
			return fmt.Errorf("-solvers wants exactly two names: A,B")
		}
		o.SolverA, o.SolverB = strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
	case *split != "":
		t, err := time.Parse(time.RFC3339, *split)
		if err != nil {
			return fmt.Errorf("-split: %w", err)
		}
		o.Split = t
	case *window > 0:
		o.Split = time.Now().Add(-*window)
	default:
		return fmt.Errorf("report needs -solvers A,B, -split T or -window D")
	}
	recs, err := c.fetchSummaries(url.Values{"limit": {"0"}})
	if err != nil {
		return err
	}
	md, err := archive.BuildReport(recs, o)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(c.out, md)
	return err
}

func cmdAdvise(c *client, args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	in := fs.String("in", "-", "instance JSON file (- for stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := spec.ReadInstance(*in)
	if err != nil {
		return err
	}
	body, err := json.Marshal(inst)
	if err != nil {
		return err
	}
	resp, err := c.post("/v1/archive/advise", nil, body, 0)
	if err != nil {
		return err
	}
	got, err := drainBody(resp)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: %s: %s", resp.Status, got)
	}
	var dec archive.Decision
	if err := json.Unmarshal(got, &dec); err != nil {
		return fmt.Errorf("decoding decision: %w", err)
	}
	fmt.Fprintf(c.out, "solver:     %s\n", dec.Solver)
	fmt.Fprintf(c.out, "basis:      %s\n", dec.Basis)
	fmt.Fprintf(c.out, "candidates: %d\n", dec.Candidates)
	if len(dec.EngineOps) > 0 {
		fmt.Fprintf(c.out, "ops:        %s\n", strings.Join(dec.EngineOps, ","))
	}
	if dec.EngineRounds > 0 {
		fmt.Fprintf(c.out, "rounds:     %d\n", dec.EngineRounds)
	}
	if dec.EngineBudget > 0 {
		fmt.Fprintf(c.out, "budget:     %d\n", dec.EngineBudget)
	}
	return nil
}
