package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"nocdeploy/internal/archive"
	"nocdeploy/internal/service"
)

// startArchivedServer is startServer plus a memory-mode solve archive, so
// history/report/advise have something to query.
func startArchivedServer(t *testing.T) (*client, *bytes.Buffer, func()) {
	t.Helper()
	arch, err := archive.Open(archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Archive: arch})
	srv := httptest.NewServer(svc.Handler())
	var out bytes.Buffer
	c := &client{base: srv.URL, out: &out}
	return c, &out, func() {
		srv.Close()
		svc.Close()
	}
}

func TestHistoryReportAdviseEndToEnd(t *testing.T) {
	c, out, stop := startArchivedServer(t)
	defer stop()
	in := writeInstanceFile(t)

	for _, solver := range []string{"repair", "heuristic"} {
		if err := cmdSolve(c, []string{"-in", in, "-solver", solver, "-out", os.DevNull}); err != nil {
			t.Fatalf("solve -solver %s: %v", solver, err)
		}
	}

	// history: both solves in the table, newest first.
	out.Reset()
	if err := cmdHistory(c, nil); err != nil {
		t.Fatalf("history: %v", err)
	}
	table := out.String()
	for _, want := range []string{"ID", "SOLVER", "repair", "heuristic", "3", "2x1", "ok"} {
		if !strings.Contains(table, want) {
			t.Fatalf("history table missing %q:\n%s", want, table)
		}
	}
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 3 { // header + 2 records
		t.Fatalf("history rows = %d, want 3:\n%s", len(lines), table)
	}
	if !strings.HasPrefix(lines[1], "a2") || !strings.HasPrefix(lines[2], "a1") {
		t.Fatalf("history not newest-first:\n%s", table)
	}

	// history -solver filter and -json output.
	out.Reset()
	if err := cmdHistory(c, []string{"-solver", "repair", "-json"}); err != nil {
		t.Fatal(err)
	}
	var recs []archive.Summary
	if err := json.Unmarshal(out.Bytes(), &recs); err != nil {
		t.Fatalf("history -json: %v\n%s", err, out.Bytes())
	}
	if len(recs) != 1 || recs[0].Solver != "repair" {
		t.Fatalf("history -solver repair -json: %+v", recs)
	}

	// report: rendered locally from the fetched summaries.
	out.Reset()
	if err := cmdReport(c, []string{"-solvers", "repair,heuristic"}); err != nil {
		t.Fatalf("report: %v", err)
	}
	md := out.String()
	for _, want := range []string{"# Solve archive report", "cohort A: solver repair", "## Summary"} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q:\n%s", want, md)
		}
	}
	if err := cmdReport(c, nil); err == nil {
		t.Fatal("report with no mode accepted")
	}

	// advise: the exact instance was just solved by two solvers, so the
	// decision comes from the instance tier.
	out.Reset()
	if err := cmdAdvise(c, []string{"-in", in}); err != nil {
		t.Fatalf("advise: %v", err)
	}
	advice := out.String()
	if !strings.Contains(advice, "basis:      instance") {
		t.Fatalf("advise basis:\n%s", advice)
	}
	if !strings.Contains(advice, "solver:     repair") && !strings.Contains(advice, "solver:     heuristic") {
		t.Fatalf("advise solver:\n%s", advice)
	}

	// solver=auto round-trips through the CLI too.
	out.Reset()
	if err := cmdSolve(c, []string{"-in", in, "-solver", "auto", "-seed", "9", "-out", os.DevNull}); err != nil {
		t.Fatalf("solve -solver auto: %v", err)
	}
}

func TestHistoryAgainstArchivelessServer(t *testing.T) {
	c, out, stop := startServer(t)
	defer stop()

	if err := cmdHistory(c, nil); err == nil || !strings.Contains(err.Error(), "archive") {
		t.Fatalf("history without archive: err = %v, want the server's disabled notice", err)
	}

	// advise still answers (default tier), even with the archive off.
	in := writeInstanceFile(t)
	out.Reset()
	if err := cmdAdvise(c, []string{"-in", in}); err != nil {
		t.Fatalf("advise without archive: %v", err)
	}
	if !strings.Contains(out.String(), "basis:      default") {
		t.Fatalf("advise basis without archive:\n%s", out.String())
	}
}

func TestHistoryEmptyArchive(t *testing.T) {
	c, out, stop := startArchivedServer(t)
	defer stop()
	if err := cmdHistory(c, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(no archived solves match)") {
		t.Fatalf("empty history output:\n%s", out.String())
	}
}
