package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nocdeploy/internal/service"
)

// TestWatchStreamParsing drives watchStream with a canned SSE stream and
// checks the convergence fold: incumbent/bound/gap tracked, stream.gap
// drops surfaced, terminal line carries the outcome.
func TestWatchStreamParsing(t *testing.T) {
	stream := strings.Join([]string{
		": hb",
		"",
		"id: 3",
		"event: bb.incumbent",
		`data: {"seq":3,"t":0.01,"kind":"bb.incumbent","obj":12.5}`,
		"",
		"event: stream.gap",
		`data: {"kind":"stream.gap","node":7}`,
		"",
		"id: 9",
		"event: bb.gap",
		`data: {"seq":9,"t":0.02,"kind":"bb.gap","obj":12.5,"bound":11.0,"gap":0.12}`,
		"",
		"event: solve.done",
		`data: {"kind":"solve.done","label":"request","phase":"cancelled","dur":0.4}`,
		"",
	}, "\n") + "\n"

	var out bytes.Buffer
	c := &client{base: "http://unused", out: &out}
	st := &watchState{start: time.Now()}
	done, err := watchStream(c, "job-1", bufio.NewScanner(strings.NewReader(stream)), true, st)
	if err != nil {
		t.Fatalf("watchStream: %v", err)
	}
	if !done {
		t.Fatal("terminal event did not finish the watch")
	}
	if st.lastSeq != 9 {
		t.Errorf("lastSeq = %d, want 9 (resume cursor from id: lines)", st.lastSeq)
	}
	got := out.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("plain watch printed %d lines, want 3 updates + done:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], "inc=12.5") || !strings.Contains(lines[0], "(bb.incumbent)") {
		t.Errorf("incumbent update line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "drops=7") {
		t.Errorf("stream.gap update line %q does not show drops", lines[1])
	}
	if !strings.Contains(lines[2], "bound=11") || !strings.Contains(lines[2], "gap=12.00%") {
		t.Errorf("bb.gap update line = %q", lines[2])
	}
	term := lines[3]
	if !strings.HasPrefix(term, "done: outcome=cancelled") || !strings.Contains(term, "drops=7") {
		t.Errorf("terminal line = %q", term)
	}
}

// TestWatchStreamEngineOperatorColumn: portfolio engine.op.apply events
// fold into the "last improving operator" column — improving applications
// move the incumbent and take the op= credit, non-improving ones are
// ignored — and -plain prints one update line per improvement.
func TestWatchStreamEngineOperatorColumn(t *testing.T) {
	stream := strings.Join([]string{
		"event: engine.op.apply",
		`data: {"seq":2,"t":0.01,"kind":"engine.op.apply","label":"repair","node":1,"obj":14.0,"bound":0.9,"phase":"improved"}`,
		"",
		"event: engine.op.apply",
		`data: {"seq":3,"t":0.02,"kind":"engine.op.apply","label":"anneal","node":2,"obj":14.5,"bound":0.6,"phase":"feasible"}`,
		"",
		"event: engine.op.apply",
		`data: {"seq":4,"t":0.03,"kind":"engine.op.apply","label":"subtree","node":3,"obj":12.25,"bound":0.8,"phase":"improved"}`,
		"",
		"event: engine.iter",
		`data: {"seq":5,"t":0.03,"kind":"engine.iter","node":1,"obj":12.25,"iters":3}`,
		"",
		"event: solve.done",
		`data: {"kind":"solve.done","label":"request","phase":"ok","dur":0.2}`,
		"",
	}, "\n") + "\n"

	var out bytes.Buffer
	c := &client{base: "http://unused", out: &out}
	done, err := watchStream(c, "job-2", bufio.NewScanner(strings.NewReader(stream)), true, &watchState{start: time.Now()})
	if err != nil {
		t.Fatalf("watchStream: %v", err)
	}
	if !done {
		t.Fatal("terminal event did not finish the watch")
	}
	got := out.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	// Two improving applications print; the feasible-not-better one and
	// the round marker do not.
	if len(lines) != 3 {
		t.Fatalf("plain watch printed %d lines, want 2 updates + done:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], "inc=14") || !strings.Contains(lines[0], "op=repair") {
		t.Errorf("first improvement line = %q, want inc=14 op=repair", lines[0])
	}
	if !strings.Contains(lines[1], "inc=12.25") || !strings.Contains(lines[1], "op=subtree") {
		t.Errorf("second improvement line = %q, want inc=12.25 op=subtree", lines[1])
	}
	if strings.Contains(got, "op=anneal") {
		t.Errorf("non-improving operator took credit:\n%s", got)
	}
	if !strings.HasPrefix(lines[2], "done: outcome=ok") {
		t.Errorf("terminal line = %q", lines[2])
	}
}

// TestWatchStreamWithoutTerminal: a stream that just stops (server went
// away) reports "not done" so cmdWatch reconnects — and once the retries
// are exhausted, the watch as a whole fails with the terminal-missing
// error rather than looking like a finished solve.
func TestWatchStreamWithoutTerminal(t *testing.T) {
	stream := "event: bb.incumbent\ndata: {\"kind\":\"bb.incumbent\",\"obj\":1}\n\n"
	var out bytes.Buffer
	c := &client{base: "http://unused", out: &out}
	done, err := watchStream(c, "job-1", bufio.NewScanner(strings.NewReader(stream)), true, &watchState{start: time.Now()})
	if err != nil {
		t.Fatalf("watchStream: %v", err)
	}
	if done {
		t.Fatal("stream without a terminal event reported done")
	}

	// End to end: a server whose streams always end terminal-less must
	// fail the watch after the retries run out.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, stream)
	}))
	defer srv.Close()
	err = cmdWatch(&client{base: srv.URL, out: &out}, []string{"-plain", "-retries", "1", "job-1"})
	if err == nil || !strings.Contains(err.Error(), "without a terminal") {
		t.Fatalf("err = %v, want terminal-missing error", err)
	}
}

// TestWatchReconnect: a dropped SSE connection is retried with the
// Last-Event-ID header set to the last seen sequence number, and the
// resumed stream completes the watch.
func TestWatchReconnect(t *testing.T) {
	var conns atomic.Int64
	var resumeID atomic.Value // Last-Event-ID header of the second connection
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		if conns.Add(1) == 1 {
			// First connection: one incumbent, then the server "dies".
			fmt.Fprint(w, "id: 5\nevent: bb.incumbent\ndata: {\"seq\":5,\"kind\":\"bb.incumbent\",\"obj\":9.5}\n\n")
			return
		}
		resumeID.Store(r.Header.Get("Last-Event-ID"))
		fmt.Fprint(w, "id: 8\nevent: bb.gap\ndata: {\"seq\":8,\"kind\":\"bb.gap\",\"obj\":9.5,\"bound\":9.0,\"gap\":0.05}\n\n")
		fmt.Fprint(w, "event: solve.done\ndata: {\"kind\":\"solve.done\",\"label\":\"request\",\"phase\":\"ok\",\"dur\":0.1}\n\n")
	}))
	defer srv.Close()

	var out bytes.Buffer
	c := &client{base: srv.URL, out: &out}
	if err := cmdWatch(c, []string{"-plain", "job-7"}); err != nil {
		t.Fatalf("watch: %v", err)
	}
	if got := conns.Load(); got != 2 {
		t.Fatalf("server saw %d connections, want 2 (one drop, one resume)", got)
	}
	if got, _ := resumeID.Load().(string); got != "5" {
		t.Fatalf("reconnect Last-Event-ID = %q, want \"5\"", got)
	}
	if !strings.Contains(out.String(), "done: outcome=ok") {
		t.Fatalf("resumed watch has no terminal line:\n%s", out.String())
	}
}

// TestWatchEndToEnd: watch an async job against a real service. The tiny
// instance finishes quickly, so this mostly exercises the late-join path:
// replayed prefix, then the terminal synthesized from req.done.
func TestWatchEndToEnd(t *testing.T) {
	c, out, stop := startServer(t)
	defer stop()

	path := writeInstanceFile(t)
	if err := cmdSolve(c, []string{"-in", path, "-solver", "optimal", "-async"}); err != nil {
		t.Fatal(err)
	}
	var job service.Job
	if err := json.Unmarshal(out.Bytes(), &job); err != nil {
		t.Fatalf("async solve output not a job: %v", err)
	}
	out.Reset()

	if err := cmdWatch(c, []string{"-plain", job.ID}); err != nil {
		t.Fatalf("watch: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "done: outcome=") {
		t.Fatalf("watch output has no terminal line:\n%s", got)
	}
	if !strings.Contains(got, "inc=") {
		t.Fatalf("watch output has no convergence update:\n%s", got)
	}

	if err := cmdWatch(c, []string{"-plain", "job-999"}); err == nil {
		t.Fatal("watching an unknown job succeeded")
	}
}
