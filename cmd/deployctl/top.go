package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"nocdeploy/internal/obs"
)

// cmdTop is the live dashboard: it polls the JSON metrics snapshot and
// renders the deltas of each polling window — request rate, per-outcome
// split, per-stage latency quantiles — next to the point-in-time gauges
// (queue depth, in-flight solves, cache hit rate). -plain appends frames
// instead of redrawing in place, for logs and non-ANSI terminals.
func cmdTop(c *client, args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	interval := fs.Duration("interval", 2*time.Second, "polling interval")
	frames := fs.Int("n", 0, "stop after N frames (0 = run until interrupted)")
	plain := fs.Bool("plain", false, "append frames instead of redrawing (no ANSI escapes)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval <= 0 {
		return fmt.Errorf("interval must be positive")
	}
	prev, err := c.snapshot()
	if err != nil {
		return err
	}
	prevAt := time.Now()
	for i := 0; *frames == 0 || i < *frames; i++ {
		time.Sleep(*interval)
		cur, err := c.snapshot()
		if err != nil {
			return err
		}
		now := time.Now()
		if !*plain {
			// Home the cursor and clear below: repaint without flicker.
			fmt.Fprint(c.out, "\x1b[H\x1b[2J")
		}
		renderTop(c.out, c.base, cur, cur.DeltaFrom(prev), now.Sub(prevAt))
		prev, prevAt = cur, now
	}
	return nil
}

// renderTop draws one frame: cur supplies the gauges, delta the
// window-relative counters and histograms.
func renderTop(w io.Writer, server string, cur, delta obs.Snapshot, window time.Duration) {
	outcomes := outcomeCounts(delta)
	var total int64
	for _, v := range outcomes {
		total += v
	}
	qps := float64(total) / window.Seconds()

	fmt.Fprintf(w, "nocdeployd %s — window %v\n\n", server, window.Round(100*time.Millisecond))
	fmt.Fprintf(w, "requests   %6.1f req/s   (%d in window)\n", qps, total)
	fmt.Fprintf(w, "queue      %6.0f deep    %6.0f waiting   %6.0f solving\n",
		cur.Gauges["queue.depth"], cur.Gauges["queue.waiting"], cur.Gauges["solve.inflight"])
	fmt.Fprintf(w, "cache      %6.1f%% hit    %6.0f entries   %6.0f jobs live\n",
		100*cur.Gauges["cache.hit_ratio"], cur.Gauges["cache.entries"], cur.Gauges["jobs.live"])

	if len(outcomes) > 0 {
		keys := make([]string, 0, len(outcomes))
		for k := range outcomes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s %d", k, outcomes[k]))
		}
		fmt.Fprintf(w, "outcomes   %s\n", strings.Join(parts, "   "))
	}

	fmt.Fprintf(w, "\n%-12s %8s %10s %10s %10s\n", "stage", "count", "p50", "p95", "p99")
	for _, stage := range []string{"admission", "cache", "queue", "solve", "e2e"} {
		h, ok := delta.Hists["stage."+stage+"_seconds"]
		if !ok || h.Count == 0 {
			fmt.Fprintf(w, "%-12s %8d %10s %10s %10s\n", stage, 0, "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "%-12s %8d %10s %10s %10s\n", stage, h.Count,
			fmtSeconds(h.Quantile(0.50)), fmtSeconds(h.Quantile(0.95)), fmtSeconds(h.Quantile(0.99)))
	}
}

// fmtSeconds renders a latency in seconds with a human unit.
func fmtSeconds(s float64) string {
	if math.IsNaN(s) {
		return "-"
	}
	d := time.Duration(s * float64(time.Second))
	switch {
	case d < time.Microsecond:
		return d.Round(time.Nanosecond).String()
	case d < time.Millisecond:
		return d.Round(100 * time.Nanosecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	}
	return d.Round(time.Millisecond).String()
}
