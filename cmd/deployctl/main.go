// Command deployctl is the client for nocdeployd (see internal/service).
//
// Usage:
//
//	deployctl [-server URL] solve   [-in FILE] [-solver S] [-objective O]
//	                                [-seed N] [-timeout D] [-ops A,B,...]
//	                                [-rounds N] [-budget N] [-async]
//	                                [-check] [-out FILE]
//	deployctl [-server URL] job     [-trace] ID
//	deployctl [-server URL] watch   [-request] [-plain] [-retries N] ID
//	deployctl [-server URL] history [-n N] [-solver S] [-instance H]
//	                                [-outcome O] [-since T] [-json]
//	deployctl [-server URL] report  [-solvers A,B | -split T] [-rows N]
//	deployctl [-server URL] advise  [-in FILE]
//	deployctl [-server URL] health
//	deployctl [-server URL] metrics [-format json|prom]
//	deployctl [-server URL] top     [-interval D] [-n N] [-plain]
//	deployctl [-server URL] load    [-in FILE] [-n N] [-c N] [-solver S]
//	                                [-timeout D] [-spread]
//
// solve posts an instance and writes the returned deployment; -check
// rebuilds the instance locally and validates the deployment against it,
// exiting non-zero on mismatch. job -trace fetches the job's per-request
// trace slice (JSONL) instead of its status. watch attaches to a job's
// live SSE event stream and renders the solve's convergence — incumbent,
// bound, gap %, event rate — until the terminal event; -request watches
// by request ID, -plain appends lines instead of redrawing (for CI and
// logs), and a dropped stream is reconnected up to -retries times with
// Last-Event-ID resume. history lists the server's persistent solve
// archive (GET /v1/archive), report renders a markdown regression report
// comparing two solvers or two time windows on shared instances, and
// advise asks the archive-backed advisor which solver it would pick for
// an instance (the same decision solver=auto applies). metrics -format prom asks
// the server for the Prometheus text exposition and validates it before
// printing. top is a live terminal dashboard — request rate, per-stage
// latency quantiles, queue depth and cache hit rate, recomputed over
// each polling window. load is a small generator: n requests at
// concurrency c, reporting status/cache-outcome counts, latency
// percentiles and the server-side outcome counters; -spread gives every
// request a distinct seed so nothing coalesces (the default hammers one
// cache key).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"nocdeploy/internal/core"
	"nocdeploy/internal/obs"
	"nocdeploy/internal/runner"
	"nocdeploy/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("deployctl: ")
	server := flag.String("server", "http://127.0.0.1:7077", "nocdeployd base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("missing subcommand: solve, job, watch, history, report, advise, health, metrics, top or load")
	}
	c := &client{base: *server, out: os.Stdout}
	var err error
	switch args[0] {
	case "solve":
		err = cmdSolve(c, args[1:])
	case "job":
		err = cmdJob(c, args[1:])
	case "watch":
		err = cmdWatch(c, args[1:])
	case "history":
		err = cmdHistory(c, args[1:])
	case "report":
		err = cmdReport(c, args[1:])
	case "advise":
		err = cmdAdvise(c, args[1:])
	case "health":
		err = cmdGet(c, "/healthz")
	case "metrics":
		err = cmdMetrics(c, args[1:])
	case "top":
		err = cmdTop(c, args[1:])
	case "load":
		err = cmdLoad(c, args[1:])
	default:
		err = fmt.Errorf("unknown subcommand %q", args[0])
	}
	if err != nil {
		log.Fatal(err)
	}
}

// client pairs the server base URL with the output stream, so tests can
// drive subcommands against an httptest server and capture what they
// print.
type client struct {
	base string
	out  io.Writer
}

func (c *client) post(path string, q url.Values, body []byte, timeout time.Duration) (*http.Response, error) {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		// Allow generous slack over the server-side solve budget.
		ctx, cancel = context.WithTimeout(ctx, timeout+time.Minute)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return http.DefaultClient.Do(req)
}

func (c *client) get(path string) (*http.Response, error) {
	return http.Get(c.base + path)
}

// getAccept is get with an Accept header, for content-negotiated routes.
func (c *client) getAccept(path, accept string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", accept)
	return http.DefaultClient.Do(req)
}

// snapshot fetches and decodes the JSON metrics snapshot.
func (c *client) snapshot() (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := c.get("/metrics")
	if err != nil {
		return snap, err
	}
	got, err := drainBody(resp)
	if err != nil {
		return snap, err
	}
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("server: %s: %s", resp.Status, got)
	}
	if err := json.Unmarshal(got, &snap); err != nil {
		return snap, fmt.Errorf("decoding metrics: %w", err)
	}
	return snap, nil
}

func drainBody(resp *http.Response) ([]byte, error) {
	b, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	return b, err
}

func solveQuery(solver, objective string, seed int64, timeout time.Duration) url.Values {
	q := url.Values{}
	if solver != "" {
		q.Set("solver", solver)
	}
	if objective != "" {
		q.Set("objective", objective)
	}
	if seed != 0 {
		q.Set("seed", strconv.FormatInt(seed, 10))
	}
	if timeout > 0 {
		q.Set("timeout", timeout.String())
	}
	return q
}

// engineQuery appends the portfolio engine options (solver=portfolio only).
func engineQuery(q url.Values, ops string, rounds, budget int) url.Values {
	if ops != "" {
		q.Set("ops", ops)
	}
	if rounds > 0 {
		q.Set("rounds", strconv.Itoa(rounds))
	}
	if budget > 0 {
		q.Set("budget", strconv.Itoa(budget))
	}
	return q
}

func cmdSolve(c *client, args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	in := fs.String("in", "-", "instance JSON file (- for stdin)")
	out := fs.String("out", "-", "deployment JSON output (- for stdout)")
	solver := fs.String("solver", "heuristic", "solver: heuristic, repair, anneal, optimal or portfolio")
	objective := fs.String("objective", "", "objective: be (default) or me")
	seed := fs.Int64("seed", 0, "solver tie-break seed")
	timeout := fs.Duration("timeout", 0, "per-request solve budget")
	ops := fs.String("ops", "", "portfolio operators, comma-separated (solver=portfolio)")
	rounds := fs.Int("rounds", 0, "portfolio improvement rounds (solver=portfolio; 0 = server default)")
	budget := fs.Int("budget", 0, "portfolio exact-repair node budget (solver=portfolio; 0 = server default)")
	async := fs.Bool("async", false, "submit as an async job and print the job id")
	check := fs.Bool("check", false, "rebuild the instance locally and validate the deployment")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := spec.ReadInstance(*in)
	if err != nil {
		return err
	}
	body, err := json.Marshal(inst)
	if err != nil {
		return err
	}
	q := engineQuery(solveQuery(*solver, *objective, *seed, *timeout), *ops, *rounds, *budget)
	if *async {
		q.Set("mode", "async")
	}
	resp, err := c.post("/v1/solve", q, body, *timeout)
	if err != nil {
		return err
	}
	got, err := drainBody(resp)
	if err != nil {
		return err
	}
	if *async {
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("server: %s: %s", resp.Status, got)
		}
		_, err := c.out.Write(got)
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: %s: %s", resp.Status, got)
	}
	fmt.Fprintf(os.Stderr, "request:   %s\n", resp.Header.Get("X-Request-ID"))
	fmt.Fprintf(os.Stderr, "cache:     %s\n", resp.Header.Get("X-Cache"))
	fmt.Fprintf(os.Stderr, "solver:    %s\n", resp.Header.Get("X-Solver"))
	fmt.Fprintf(os.Stderr, "feasible:  %s\n", resp.Header.Get("X-Solve-Feasible"))
	fmt.Fprintf(os.Stderr, "cancelled: %s\n", resp.Header.Get("X-Solve-Cancelled"))
	var dep spec.Deployment
	if err := json.Unmarshal(got, &dep); err != nil {
		return fmt.Errorf("decoding deployment: %w", err)
	}
	if *check {
		sys, err := inst.Build()
		if err != nil {
			return err
		}
		if _, err := core.Validate(sys, dep.ToDeployment()); err != nil {
			return fmt.Errorf("validation failed: %w", err)
		}
		fmt.Fprintln(os.Stderr, "check:     deployment validates against the instance")
	}
	return spec.WriteJSON(*out, dep)
}

func cmdJob(c *client, args []string) error {
	fs := flag.NewFlagSet("job", flag.ExitOnError)
	trace := fs.Bool("trace", false, "fetch the job's request trace slice (JSONL) instead of its status")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: deployctl job [-trace] ID")
	}
	id := url.PathEscape(fs.Arg(0))
	if !*trace {
		return cmdGet(c, "/v1/jobs/"+id)
	}
	resp, err := c.get("/v1/jobs/" + id + "/trace")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		got, _ := drainBody(resp)
		return fmt.Errorf("server: %s: %s", resp.Status, got)
	}
	// Stream-validate: each line is decoded before it is re-emitted, so a
	// torn slice fails loudly mid-stream instead of printing garbage, and
	// an arbitrarily large trace never has to fit in memory at once.
	n := 0
	enc := json.NewEncoder(c.out)
	scanErr := obs.ScanJSONL(resp.Body, func(e obs.Event) error {
		n++
		return enc.Encode(e)
	})
	if cerr := resp.Body.Close(); scanErr == nil {
		scanErr = cerr
	}
	if scanErr != nil {
		return fmt.Errorf("invalid trace slice: %w", scanErr)
	}
	if n == 0 {
		return fmt.Errorf("empty trace slice for job %s", fs.Arg(0))
	}
	return nil
}

func cmdGet(c *client, path string) error {
	resp, err := c.get(path)
	if err != nil {
		return err
	}
	got, err := drainBody(resp)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: %s: %s", resp.Status, got)
	}
	_, err = c.out.Write(got)
	return err
}

func cmdMetrics(c *client, args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	format := fs.String("format", "json", "exposition format: json or prom")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "json":
		return cmdGet(c, "/metrics")
	case "prom", "prometheus":
	default:
		return fmt.Errorf("unknown format %q (want json or prom)", *format)
	}
	resp, err := c.getAccept("/metrics", "text/plain")
	if err != nil {
		return err
	}
	got, err := drainBody(resp)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: %s: %s", resp.Status, got)
	}
	// Validate the exposition end-to-end: a scrape deployctl can't parse
	// is a bug worth failing on, not printing.
	if _, err := obs.ParsePrometheus(bytes.NewReader(got)); err != nil {
		return fmt.Errorf("invalid Prometheus exposition: %w", err)
	}
	_, err = c.out.Write(got)
	return err
}

// outcomeCounts extracts the requests{outcome=...} counters from a
// snapshot, keyed by outcome label value.
func outcomeCounts(snap obs.Snapshot) map[string]int64 {
	const prefix = `requests{outcome="`
	m := map[string]int64{}
	for k, v := range snap.Counters {
		rest, ok := strings.CutPrefix(k, prefix)
		if !ok {
			continue
		}
		outcome, ok := strings.CutSuffix(rest, `"}`)
		if !ok {
			continue
		}
		m[outcome] = v
	}
	return m
}

func cmdLoad(c *client, args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	in := fs.String("in", "-", "instance JSON file (- for stdin)")
	n := fs.Int("n", 100, "total requests")
	conc := fs.Int("c", 8, "concurrent requests")
	solver := fs.String("solver", "heuristic", "solver to request")
	objective := fs.String("objective", "", "objective: be (default) or me")
	timeout := fs.Duration("timeout", 0, "per-request solve budget")
	spread := fs.Bool("spread", false, "distinct seed per request (defeats coalescing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := spec.ReadInstance(*in)
	if err != nil {
		return err
	}
	body, err := json.Marshal(inst)
	if err != nil {
		return err
	}
	before, err := c.snapshot()
	if err != nil {
		return fmt.Errorf("pre-load metrics scrape: %w", err)
	}
	type sample struct {
		status  int
		outcome string
		latency time.Duration
	}
	start := time.Now()
	samples, err := runner.Map(context.Background(), *conc, *n, func(ctx context.Context, i int) (sample, error) {
		seed := int64(0)
		if *spread {
			seed = int64(i + 1)
		}
		t0 := time.Now()
		resp, err := c.post("/v1/solve", solveQuery(*solver, *objective, seed, *timeout), body, *timeout)
		if err != nil {
			return sample{}, err
		}
		if _, err := drainBody(resp); err != nil {
			return sample{}, err
		}
		return sample{
			status:  resp.StatusCode,
			outcome: resp.Header.Get("X-Cache"),
			latency: time.Since(t0),
		}, nil
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)
	after, err := c.snapshot()
	if err != nil {
		return fmt.Errorf("post-load metrics scrape: %w", err)
	}

	statuses := map[int]int{}
	outcomes := map[string]int{}
	lats := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		statuses[s.status]++
		if s.outcome != "" {
			outcomes[s.outcome]++
		}
		lats = append(lats, s.latency)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))]
	}
	fmt.Fprintf(c.out, "requests:  %d in %v (%.1f req/s, concurrency %d)\n",
		len(samples), wall.Round(time.Millisecond), float64(len(samples))/wall.Seconds(), *conc)
	fmt.Fprintf(c.out, "status:    ")
	printCounts(c.out, statuses)
	fmt.Fprintf(c.out, "cache:     ")
	printStrCounts(c.out, outcomes)

	// The server-side view: deltas of the outcome-labelled request
	// counters across the burst. Differs from the client's cache column
	// when other clients are hitting the server concurrently.
	pre, post := outcomeCounts(before), outcomeCounts(after)
	deltas := map[string]int{}
	for oc, v := range post {
		if d := v - pre[oc]; d > 0 {
			deltas[oc] = int(d)
		}
	}
	fmt.Fprintf(c.out, "outcomes:  ")
	printStrCounts(c.out, deltas)

	fmt.Fprintf(c.out, "latency:   min %v  p50 %v  p90 %v  max %v\n",
		pct(0).Round(time.Microsecond), pct(0.5).Round(time.Microsecond),
		pct(0.9).Round(time.Microsecond), pct(1).Round(time.Microsecond))
	if statuses[http.StatusOK] != len(samples) {
		return fmt.Errorf("%d of %d requests did not return 200", len(samples)-statuses[http.StatusOK], len(samples))
	}
	return nil
}

func printCounts(w io.Writer, m map[int]int) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%d×%d  ", k, m[k])
	}
	fmt.Fprintln(w)
}

func printStrCounts(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s×%d  ", k, m[k])
	}
	fmt.Fprintln(w)
}
