package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"nocdeploy/internal/obs"
)

// cmdWatch is the live convergence view: it attaches an SSE client to a
// job's event stream (GET /v1/jobs/{id}/events) and renders the solve's
// incumbent energy, best bound, relative gap, event rate and elapsed time
// as they evolve, finishing when the stream's terminal solve.done event
// arrives. -request watches by request ID instead (any X-Request-ID),
// -plain appends a line per convergence update instead of redrawing in
// place — for logs, CI, and non-ANSI terminals.
//
// A dropped connection is not fatal: watch reconnects up to -retries
// times, resuming from the last seen trace sequence number via the
// standard Last-Event-ID header so the server replays only what was
// missed. Only after the final retry still ends without a terminal event
// does watch fail with the terminal-missing error.
func cmdWatch(c *client, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	byRequest := fs.Bool("request", false, "ID is a request ID, not a job ID")
	plain := fs.Bool("plain", false, "append update lines instead of redrawing (no ANSI escapes)")
	retries := fs.Int("retries", 3, "reconnects after a dropped stream (Last-Event-ID resume)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: deployctl watch [-request] [-plain] [-retries N] ID")
	}
	id := fs.Arg(0)
	path := "/v1/jobs/" + url.PathEscape(id) + "/events"
	if *byRequest {
		path = "/v1/requests/" + url.PathEscape(id) + "/events"
	}
	st := &watchState{start: time.Now()}
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.getSSE(path, st.lastSeq)
		if err != nil {
			lastErr = err
		} else if resp.StatusCode != 200 {
			// A refusal (404 unknown job, 500, ...) is an answer, not a
			// drop: retrying cannot change it.
			got, _ := drainBody(resp) // drainBody closes the body
			return fmt.Errorf("server: %s: %s", resp.Status, got)
		} else {
			done, serr := watchStream(c, id, bufio.NewScanner(resp.Body), *plain, st)
			if cerr := resp.Body.Close(); serr == nil {
				serr = cerr
			}
			if done {
				return serr
			}
			lastErr = serr
		}
		if attempt >= *retries {
			if lastErr != nil {
				return fmt.Errorf("stream dropped and %d reconnects failed: %w", *retries, lastErr)
			}
			return errNoTerminal
		}
		fmt.Fprintf(os.Stderr, "watch: stream dropped, reconnecting (%d/%d, last-event-id %d)\n",
			attempt+1, *retries, st.lastSeq)
		time.Sleep(time.Duration(attempt+1) * 200 * time.Millisecond)
	}
}

// errNoTerminal is the stream-ends-without-terminal contract: a stream
// that just stops (server restart mid-drain) must fail loudly, not look
// like a finished solve.
var errNoTerminal = fmt.Errorf("stream ended without a terminal event (server shutdown?)")

// getSSE opens an event-stream GET, resuming after lastSeq when the
// connection is a reconnect.
func (c *client) getSSE(path string, lastSeq int64) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastSeq, 10))
	}
	return http.DefaultClient.Do(req)
}

// watchState folds the event stream into the convergence view. One state
// spans every reconnect of a watch, so counters and the resume cursor
// (lastSeq) survive drops.
type watchState struct {
	incumbent float64
	bound     float64
	gap       float64
	haveInc   bool
	haveGap   bool
	lastOp    string // last improving portfolio operator (engine.op.apply)
	events    int
	drops     int
	start     time.Time
	lastSeq   int64 // last SSE message id seen — the Last-Event-ID resume cursor
	redrew    bool
}

func (st *watchState) fold(e obs.Event) {
	st.events++
	switch e.Kind {
	case obs.BBIncumbent:
		st.incumbent = e.Obj
		st.haveInc = true
	case obs.BBGap:
		st.incumbent = e.Obj
		st.bound = e.Bound
		st.gap = e.Gap
		st.haveInc, st.haveGap = true, true
	case obs.EngineOpApply:
		// Operator attribution for portfolio solves: only improving
		// applications move the incumbent (and the credit).
		if e.Phase == "improved" {
			st.incumbent = e.Obj
			st.haveInc = true
			st.lastOp = e.Label
		}
	case obs.StreamGap:
		st.drops += e.Node
	}
}

// line renders the one-line convergence summary.
func (st *watchState) line(id string) string {
	inc, bound, gap := "-", "-", "-"
	if st.haveInc {
		inc = fmt.Sprintf("%.6g", st.incumbent)
	}
	if st.haveGap {
		bound = fmt.Sprintf("%.6g", st.bound)
		gap = fmt.Sprintf("%.2f%%", 100*st.gap)
	}
	elapsed := time.Since(st.start)
	rate := float64(st.events) / elapsed.Seconds()
	s := fmt.Sprintf("watch %s: inc=%s bound=%s gap=%s events=%d (%.0f/s) elapsed=%s",
		id, inc, bound, gap, st.events, rate, elapsed.Round(100*time.Millisecond))
	if st.lastOp != "" {
		s += " op=" + st.lastOp
	}
	if st.drops > 0 {
		s += fmt.Sprintf(" drops=%d", st.drops)
	}
	return s
}

// watchStream consumes one SSE connection. Split out from cmdWatch so
// tests can drive it against a canned stream. done reports whether the
// watch is finished (terminal event seen, or an unrecoverable protocol
// error); a false return means the stream dropped and the caller may
// reconnect, resuming from st.lastSeq.
func watchStream(c *client, id string, sc *bufio.Scanner, plain bool, st *watchState) (done bool, err error) {
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var name, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ":"): // heartbeat comment
			continue
		case strings.HasPrefix(line, "id: "):
			if n, perr := strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64); perr == nil && n > st.lastSeq {
				st.lastSeq = n
			}
			continue
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
			continue
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
			continue
		case line != "": // unknown field
			continue
		}
		// Blank line: dispatch the accumulated message.
		if name == "" {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal([]byte(data), &e); err != nil {
			return true, fmt.Errorf("bad event payload %q: %w", data, err)
		}
		if e.Kind == obs.SolveDone && e.Label == "request" {
			// Terminal: the request is finished; report the outcome.
			if st.redrew {
				fmt.Fprintln(c.out)
			}
			fmt.Fprintf(c.out, "done: outcome=%s events=%d drops=%d elapsed=%s\n",
				e.Phase, st.events, st.drops, time.Since(st.start).Round(time.Millisecond))
			return true, nil
		}
		st.fold(e)
		progress := e.Kind == obs.BBIncumbent || e.Kind == obs.BBGap ||
			e.Kind == obs.BBBound || e.Kind == obs.StreamGap ||
			(e.Kind == obs.EngineOpApply && e.Phase == "improved")
		if plain {
			if progress {
				fmt.Fprintf(c.out, "%s (%s)\n", st.line(id), e.Kind)
			}
		} else {
			// Redraw in place; \r keeps it to one terminal line.
			fmt.Fprintf(c.out, "\r\x1b[2K%s", st.line(id))
			st.redrew = true
		}
		name, data = "", ""
	}
	if err := sc.Err(); err != nil {
		return false, fmt.Errorf("stream read: %w", err)
	}
	if st.redrew {
		fmt.Fprintln(c.out)
		st.redrew = false
	}
	return false, nil
}
