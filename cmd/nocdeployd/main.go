// Command nocdeployd runs the deployment service: an HTTP daemon exposing
// the solver stack behind a bounded job queue and a content-addressed
// solution cache (see internal/service).
//
// Usage:
//
//	nocdeployd [-addr HOST:PORT] [-addr-file FILE] [-workers N] [-queue N]
//	           [-cache-size N] [-max-jobs N] [-default-timeout D]
//	           [-max-timeout D] [-drain-grace D] [-trace-buffer N]
//	           [-stream-buffer N] [-heartbeat D] [-flight-recorder N]
//	           [-access-log FILE] [-debug-addr HOST:PORT]
//	           [-archive-dir DIR] [-archive-retention BYTES]
//	           [-archive-max-age D]
//
// The daemon answers POST /v1/solve, GET /v1/jobs/{id}, GET /healthz and
// GET /metrics (JSON by default, Prometheus text with Accept: text/plain
// or ?format=prom); cmd/deployctl is the matching client. Every request
// is tagged with an X-Request-ID whose trace slice is retained in a ring
// buffer of -trace-buffer events and served at
// GET /v1/requests/{id}/trace, and streamed live over SSE at
// GET /v1/requests/{id}/events and GET /v1/jobs/{id}/events
// (deployctl watch is the matching consumer). -stream-buffer bounds each
// SSE subscriber's drop-oldest buffer, -heartbeat sets the idle keepalive
// interval, and -flight-recorder caps the trailing trace events attached
// to failed or cancelled job records. -access-log writes one JSON line per
// request ("-" for stderr); -debug-addr starts a second listener serving
// net/http/pprof, kept off the public API surface on purpose.
//
// -archive-dir enables the persistent solve archive (internal/archive):
// every non-cached solve is recorded as segmented JSONL under DIR,
// queryable at GET /v1/archive (deployctl history/report/advise) and
// powering solver=auto. -archive-retention bounds total on-disk bytes
// and -archive-max-age expires old records; the index is recovered from
// the segments on restart, so history survives daemon restarts.
//
// On SIGTERM/SIGINT the daemon stops accepting work, drains in-flight
// requests and queued solves, and exits 0 — orchestrators can treat a
// non-zero exit as a failed drain. -addr-file writes the actually-bound
// address (useful with ":0" for tests and CI smoke runs).
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nocdeploy/internal/archive"
	"nocdeploy/internal/obs"
	"nocdeploy/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocdeployd: ")
	var (
		addr        = flag.String("addr", "127.0.0.1:7077", "listen address (use :0 for an ephemeral port)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening")
		workers     = flag.Int("workers", 0, "solver pool workers (0 = all cores)")
		queue       = flag.Int("queue", 64, "queued solves before requests are rejected with 429")
		cacheSize   = flag.Int("cache-size", 256, "solution cache entries (LRU)")
		maxJobs     = flag.Int("max-jobs", 256, "live async jobs before 429")
		defTimeout  = flag.Duration("default-timeout", 0, "solve budget for requests without an explicit timeout (0 = none)")
		maxTimeout  = flag.Duration("max-timeout", time.Hour, "clamp on per-request timeouts")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "shutdown grace for in-flight HTTP requests")
		traceBuffer = flag.Int("trace-buffer", 4096, "trace events retained for /v1/requests/{id}/trace (0 disables tracing)")
		streamBuf   = flag.Int("stream-buffer", 256, "per-subscriber SSE event buffer (drop-oldest when full)")
		heartbeat   = flag.Duration("heartbeat", 15*time.Second, "SSE idle heartbeat interval")
		flightRec   = flag.Int("flight-recorder", 64, "trailing trace events kept on failed/cancelled jobs (0 disables)")
		accessLog   = flag.String("access-log", "", "structured access log destination (- for stderr, empty disables)")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty disables)")
		archiveDir  = flag.String("archive-dir", "", "persistent solve archive directory (empty disables)")
		archiveMax  = flag.Int64("archive-retention", 256<<20, "archive size bound in bytes (oldest segments deleted past it)")
		archiveAge  = flag.Duration("archive-max-age", 0, "expire archive records older than this (0 = keep forever)")
	)
	flag.Parse()

	alog, closeLog, err := openAccessLog(*accessLog)
	if err != nil {
		log.Fatal(err)
	}
	if closeLog != nil {
		defer closeLog()
	}

	// The flag says "0 disables"; the Config says "0 means default,
	// negative disables" so that a zero value stays safe for API users.
	tb := *traceBuffer
	if tb <= 0 {
		tb = -1
	}
	fr := *flightRec
	if fr <= 0 {
		fr = -1
	}
	var arch *archive.Store
	if *archiveDir != "" {
		arch, err = archive.Open(archive.Options{
			Dir:      *archiveDir,
			MaxBytes: *archiveMax,
			MaxAge:   *archiveAge,
		})
		if err != nil {
			log.Fatal(err)
		}
		// service.Close closes the store (it owns it from here).
	}
	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		MaxJobs:        *maxJobs,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		Metrics:        obs.NewMetrics(),
		TraceBuffer:    tb,
		StreamBuffer:   *streamBuf,
		Heartbeat:      *heartbeat,
		FlightRecorder: fr,
		AccessLog:      alog,
		Archive:        arch,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	srv := &http.Server{Handler: svc.Handler()}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		go serveDebug(dln)
		log.Printf("pprof on http://%s/debug/pprof/", dln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("listening on http://%s", bound)

	select {
	case err := <-serveErr:
		log.Fatal(err) // Serve never returns nil before Shutdown
	case <-ctx.Done():
	}
	log.Print("shutting down: draining in-flight requests and queued solves")
	shCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Fatalf("http shutdown: %v", err)
	}
	svc.Close() // runs every admitted solve and async job to completion
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	log.Print("drained cleanly")
}

// openAccessLog resolves the -access-log destination: "" disables,
// "-" is stderr, anything else appends to a file.
func openAccessLog(dest string) (io.Writer, func(), error) {
	switch dest {
	case "":
		return nil, nil, nil
	case "-":
		return os.Stderr, nil, nil
	}
	f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return f, func() {
		if err := f.Close(); err != nil {
			log.Printf("closing access log: %v", err)
		}
	}, nil
}

// serveDebug runs the pprof endpoints on their own listener. The default
// mux would get them for free, but the API server deliberately uses its
// own mux, so register the handlers explicitly here.
func serveDebug(ln net.Listener) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
		log.Printf("debug server: %v", err)
	}
}
