// Command nocdeployd runs the deployment service: an HTTP daemon exposing
// the solver stack behind a bounded job queue and a content-addressed
// solution cache (see internal/service).
//
// Usage:
//
//	nocdeployd [-addr HOST:PORT] [-addr-file FILE] [-workers N] [-queue N]
//	           [-cache-size N] [-max-jobs N] [-default-timeout D]
//	           [-max-timeout D] [-drain-grace D]
//
// The daemon answers POST /v1/solve, GET /v1/jobs/{id}, GET /healthz and
// GET /metrics; cmd/deployctl is the matching client. On SIGTERM/SIGINT it
// stops accepting work, drains in-flight requests and queued solves, and
// exits 0 — orchestrators can treat a non-zero exit as a failed drain.
// -addr-file writes the actually-bound address (useful with ":0" for tests
// and CI smoke runs).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nocdeploy/internal/obs"
	"nocdeploy/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocdeployd: ")
	var (
		addr       = flag.String("addr", "127.0.0.1:7077", "listen address (use :0 for an ephemeral port)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening")
		workers    = flag.Int("workers", 0, "solver pool workers (0 = all cores)")
		queue      = flag.Int("queue", 64, "queued solves before requests are rejected with 429")
		cacheSize  = flag.Int("cache-size", 256, "solution cache entries (LRU)")
		maxJobs    = flag.Int("max-jobs", 256, "live async jobs before 429")
		defTimeout = flag.Duration("default-timeout", 0, "solve budget for requests without an explicit timeout (0 = none)")
		maxTimeout = flag.Duration("max-timeout", time.Hour, "clamp on per-request timeouts")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "shutdown grace for in-flight HTTP requests")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		MaxJobs:        *maxJobs,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		Metrics:        obs.NewMetrics(),
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	srv := &http.Server{Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("listening on http://%s", bound)

	select {
	case err := <-serveErr:
		log.Fatal(err) // Serve never returns nil before Shutdown
	case <-ctx.Done():
	}
	log.Print("shutting down: draining in-flight requests and queued solves")
	shCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Fatalf("http shutdown: %v", err)
	}
	svc.Close() // runs every admitted solve and async job to completion
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	log.Print("drained cleanly")
}
