// Command nocsim pushes the NoC traffic of a deployment through the
// flit-level wormhole simulator and reports per-packet latencies, link
// utilization and the comparison against the analytic communication-time
// budget the deployment's schedule reserved.
//
// Usage:
//
//	nocsim -instance inst.json -deployment dep.json
package main

import (
	"flag"
	"fmt"
	"log"

	"nocdeploy/internal/nocsim"
	"nocdeploy/internal/sim"
	"nocdeploy/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocsim: ")
	var (
		instPath = flag.String("instance", "", "instance JSON file")
		depPath  = flag.String("deployment", "", "deployment JSON file")
	)
	flag.Parse()
	if *instPath == "" || *depPath == "" {
		log.Fatal("both -instance and -deployment are required")
	}
	inst, err := spec.ReadInstance(*instPath)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := inst.Build()
	if err != nil {
		log.Fatal(err)
	}
	dspec, err := spec.ReadDeployment(*depPath)
	if err != nil {
		log.Fatal(err)
	}
	d := dspec.ToDeployment()

	pkts := sim.NetworkTraffic(sys, d)
	if len(pkts) == 0 {
		fmt.Println("deployment co-locates all dependent tasks: no NoC traffic")
		return
	}
	st, err := nocsim.Simulate(sys.Mesh, pkts, nocsim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packets: %d\n", len(pkts))
	fmt.Printf("%-4s %-6s %-5s %-12s %-12s %-12s\n", "id", "bytes", "hops", "inject(ms)", "latency(us)", "budget(us)")
	for _, r := range st.Results {
		p := pkts[r.ID]
		src, dst := p.Route[0], p.Route[len(p.Route)-1]
		budget := 0.0
		for rho := 0; rho < 2; rho++ {
			route := sys.Mesh.PathOf(src, dst, rho).Nodes
			if len(route) == len(p.Route) && equal(route, p.Route) {
				budget = p.Bytes * sys.Mesh.TimePerByte(src, dst, rho)
				break
			}
		}
		fmt.Printf("%-4d %-6.0f %-5d %-12.4g %-12.4g %-12.4g\n",
			r.ID, p.Bytes, r.Hops, 1000*p.Inject, 1e6*r.Latency, 1e6*budget)
	}
	fmt.Printf("max link utilization: %.1f%%\n", 100*st.MaxLinkUtilization())
	fmt.Printf("network busy span:    %.4g ms\n", 1000*st.Span)
}

func equal(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
