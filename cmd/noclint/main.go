// Command noclint runs the repository's domain-aware static-analysis
// suite (internal/lint) over the given package patterns and reports every
// finding with a file:line:col position.
//
// Usage:
//
//	noclint [-format text|json|sarif] [-only name1,name2] [-baseline file]
//	        [-audit] [-workers n] [patterns...]
//
// Patterns default to ./... and accept the go tool's directory forms
// ("./...", "internal/lp", "internal/..."). Analysis runs one package per
// worker; output is byte-identical at any worker count.
//
// -audit switches to suppression-hygiene mode: instead of analyzer
// findings, noclint reports //lint:allow directives that carry no reason,
// name an unknown analyzer, or no longer suppress anything.
//
// -baseline filters out findings recorded in a baseline file;
// -write-baseline records the current findings into one. Baselines match
// on (analyzer, file, message) and ignore line numbers, so they survive
// unrelated edits.
//
// Exit status is the tool's contract with CI: 0 when the tree is clean,
// 1 when findings survived the baseline, and 2 when loading or
// type-checking failed — each failing package is named on stderr, and the
// packages that did load are still analyzed, so one broken directory
// degrades the run instead of blinding it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"nocdeploy/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	format := flag.String("format", "text", "output format: text, json or sarif")
	jsonOut := flag.Bool("json", false, "shorthand for -format json (kept for compatibility)")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	audit := flag.Bool("audit", false, "audit //lint:allow directives instead of running analyzers")
	baselinePath := flag.String("baseline", "", "filter out findings recorded in this baseline file")
	writeBaseline := flag.String("write-baseline", "", "record current findings into this baseline file and exit 0")
	workers := flag.Int("workers", 0, "packages analyzed concurrently (0 = all cores)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: noclint [-format text|json|sarif] [-only names] [-baseline file] [-audit] [patterns...]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "  %-11s %s\n", lint.AuditName, "(via -audit) reasonless, unknown-name or stale //lint:allow directives")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *jsonOut && *format == "text" {
		*format = "json"
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "noclint: unknown format %q (want text, json or sarif)\n", *format)
		return 2
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "noclint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, loadErrs := lint.Load(flag.Args())
	for _, le := range loadErrs {
		fmt.Fprintf(os.Stderr, "noclint: %v\n", le)
	}

	var findings []lint.Finding
	if *audit {
		findings = lint.Audit(pkgs, analyzers)
	} else {
		findings = lint.RunParallel(pkgs, analyzers, *workers)
	}

	if *writeBaseline != "" {
		base := lint.NewBaseline(findings)
		data, err := base.Marshal()
		if err != nil {
			fmt.Fprintf(os.Stderr, "noclint: marshaling baseline: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*writeBaseline, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "noclint: writing baseline: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "noclint: wrote %d baseline entries to %s\n", base.Len(), *writeBaseline)
		if len(loadErrs) > 0 {
			return 2
		}
		return 0
	}

	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "noclint: %v\n", err)
			return 2
		}
		findings = base.Filter(findings)
	}

	if err := emit(*format, findings, analyzers); err != nil {
		fmt.Fprintf(os.Stderr, "noclint: encoding findings: %v\n", err)
		return 2
	}
	if len(loadErrs) > 0 {
		fmt.Fprintf(os.Stderr, "noclint: %d package(s) failed to load (analyzed the remaining %d)\n",
			len(loadErrs), len(pkgs))
		return 2
	}
	if len(findings) > 0 {
		if *format == "text" {
			fmt.Fprintf(os.Stderr, "noclint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		return 1
	}
	return 0
}

func emit(format string, findings []lint.Finding, analyzers []*lint.Analyzer) error {
	switch format {
	case "json":
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(findings)
	case "sarif":
		data, err := lint.MarshalSARIF(lint.ToSARIF(findings, analyzers))
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	default:
		for _, f := range findings {
			fmt.Println(f.String())
		}
		return nil
	}
}
