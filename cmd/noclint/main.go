// Command noclint runs the repository's domain-aware static-analysis
// suite (internal/lint) over the given package patterns and reports every
// finding with a file:line:col position.
//
// Usage:
//
//	noclint [-json] [-only name1,name2] [patterns...]
//
// Patterns default to ./... and accept the go tool's directory forms
// ("./...", "internal/lp", "internal/..."). Exit status is 0 when the
// tree is clean, 1 when findings were reported, and 2 when loading or
// type-checking failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"nocdeploy/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: noclint [-json] [-only names] [patterns...]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "noclint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := lint.Load(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "noclint: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "noclint: encoding findings: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "noclint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		os.Exit(1)
	}
}
