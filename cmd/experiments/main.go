// Command experiments regenerates the paper's evaluation figures as
// tables (Fig. 2(a)–(h) of Mo et al., DATE 2022).
//
// Usage:
//
//	experiments [-fig all|2a|2b|2c|2d|2e|2f|2g|2h] [-quick] [-seed 1] [-timeout 45s]
//	            [-parallel N] [-trace PREFIX] [-metrics-out FILE] [-pprof FILE]
//
// Instance evaluations fan out over N workers (-parallel 0, the default,
// uses all cores; -parallel 1 reproduces the serial run). Tables are
// byte-identical for every N at a fixed seed — see DESIGN.md,
// "Determinism contract" — and tracing never changes a cell: -trace writes
// the solver/pool event stream to PREFIX.jsonl plus a Chrome trace_event
// view to PREFIX.trace.json (open in Perfetto or chrome://tracing) without
// perturbing results.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"nocdeploy/internal/exp"
	"nocdeploy/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		fig        = flag.String("fig", "all", "figure to regenerate (all, 2a..2h)")
		quick      = flag.Bool("quick", false, "reduced repetitions and time limits")
		seed       = flag.Int64("seed", 1, "base seed for instance generation")
		timeout    = flag.Duration("timeout", 0, "per-solve time limit (0 = mode default)")
		parallel   = flag.Int("parallel", 0, "concurrent instance evaluations (0 = all cores, 1 = serial)")
		csvDir     = flag.String("csv", "", "also write each table as CSV into this directory")
		traceOut   = flag.String("trace", "", "write the solver/pool trace to PREFIX.jsonl and PREFIX.trace.json")
		metrics    = flag.String("metrics-out", "", "write a solver metrics snapshot (JSON) to this file")
		cpuprofile = flag.String("pprof", "", "write a CPU profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	obsSetup, err := obs.NewCLISetup(*traceOut, *metrics, nil)
	if err != nil {
		log.Fatal(err)
	}

	cfg := exp.Config{Seed: *seed, Quick: *quick, TimeLimit: *timeout, Parallel: *parallel, Trace: obsSetup.Trace}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	ran := 0
	runners := append(exp.Runners(), exp.ExtensionRunners()...)
	match := func(name string) bool {
		switch *fig {
		case "all":
			return true
		case "ext":
			return len(name) > 4 && name[:4] == "ext-"
		default:
			return *fig == name
		}
	}
	for _, r := range runners {
		if !match(r.Name) {
			continue
		}
		ran++
		start := time.Now()
		tbl, err := r.Run(cfg)
		if err != nil {
			log.Fatalf("figure %s: %v", r.Name, err)
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("  [%v]\n\n", time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, "fig"+r.Name+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				log.Fatalf("writing %s: %v", path, err)
			}
		}
	}
	if ran == 0 {
		log.Fatalf("unknown figure %q", *fig)
	}
	if err := obsSetup.Close(); err != nil {
		log.Fatal(err)
	}
}
