// Command experiments regenerates the paper's evaluation figures as
// tables (Fig. 2(a)–(h) of Mo et al., DATE 2022).
//
// Usage:
//
//	experiments [-fig all|2a|2b|2c|2d|2e|2f|2g|2h] [-quick] [-seed 1] [-timeout 45s]
//	            [-parallel N]
//
// Instance evaluations fan out over N workers (-parallel 0, the default,
// uses all cores; -parallel 1 reproduces the serial run). Tables are
// byte-identical for every N at a fixed seed — see DESIGN.md,
// "Determinism contract".
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"nocdeploy/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		fig      = flag.String("fig", "all", "figure to regenerate (all, 2a..2h)")
		quick    = flag.Bool("quick", false, "reduced repetitions and time limits")
		seed     = flag.Int64("seed", 1, "base seed for instance generation")
		timeout  = flag.Duration("timeout", 0, "per-solve time limit (0 = mode default)")
		parallel = flag.Int("parallel", 0, "concurrent instance evaluations (0 = all cores, 1 = serial)")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	cfg := exp.Config{Seed: *seed, Quick: *quick, TimeLimit: *timeout, Parallel: *parallel}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	ran := 0
	runners := append(exp.Runners(), exp.ExtensionRunners()...)
	match := func(name string) bool {
		switch *fig {
		case "all":
			return true
		case "ext":
			return len(name) > 4 && name[:4] == "ext-"
		default:
			return *fig == name
		}
	}
	for _, r := range runners {
		if !match(r.Name) {
			continue
		}
		ran++
		start := time.Now()
		tbl, err := r.Run(cfg)
		if err != nil {
			log.Fatalf("figure %s: %v", r.Name, err)
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("  [%v]\n\n", time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, "fig"+r.Name+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				log.Fatalf("writing %s: %v", path, err)
			}
		}
	}
	if ran == 0 {
		log.Fatalf("unknown figure %q", *fig)
	}
}
