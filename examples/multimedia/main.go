// Multimedia: a frame-decoder pipeline (parse → four parallel macroblock
// workers → deblock → display) with large inter-task payloads, where NoC
// routing genuinely matters. Deploys with the heuristic, compares
// multi-path routing against the single-path baseline, and pushes the
// resulting traffic through the flit-level wormhole simulator.
package main

import (
	"fmt"
	"log"

	"nocdeploy"
)

func buildDecoder() *nocdeploy.TaskGraph {
	g := nocdeploy.NewTaskGraph()
	parse := g.AddTask("parse", 1.0e6, 0.0036)
	var workers []int
	for i := 0; i < 4; i++ {
		workers = append(workers, g.AddTask(fmt.Sprintf("mb%d", i), 2.2e6, 0.0079))
	}
	deblock := g.AddTask("deblock", 1.8e6, 0.0065)
	display := g.AddTask("display", 0.7e6, 0.0026)
	for _, w := range workers {
		g.AddEdge(parse, w, 96<<10) // slices are big
		g.AddEdge(w, deblock, 64<<10)
	}
	g.AddEdge(deblock, display, 128<<10)
	return g
}

func main() {
	plat := nocdeploy.DefaultPlatform(16)
	mesh := nocdeploy.DefaultMesh(4, 4)
	// Model an energy-hungry interconnect (e.g. an older process node or a
	// long-link hierarchical NoC) so routing decisions carry real weight —
	// this is the high-μ regime of the paper's Fig. 2(b).
	mesh.ScaleEnergy(200)
	g := buildDecoder()
	rel := nocdeploy.DefaultReliability(plat.Fmin(), plat.Fmax())
	h, err := nocdeploy.Horizon(plat, mesh, g, rel, 1.5)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := nocdeploy.NewSystem(plat, mesh, g, rel, h)
	if err != nil {
		log.Fatal(err)
	}

	var kept *nocdeploy.Deployment
	for _, single := range []bool{false, true} {
		d, info, err := nocdeploy.Heuristic(sys, nocdeploy.Options{SinglePath: single}, 1)
		if err != nil {
			log.Fatal(err)
		}
		m, err := nocdeploy.ComputeMetrics(sys, d)
		if err != nil {
			log.Fatal(err)
		}
		mode := "multi-path"
		if single {
			mode = "single-path"
		} else {
			kept = d
		}
		fmt.Printf("%-12s feasible=%v  max core %.4g mJ  comm share %.1f%%  makespan %.3g ms\n",
			mode, info.Feasible, 1000*m.MaxEnergy,
			100*commShare(m), 1000*m.Makespan)
	}

	// Flit-level replay of the multi-path deployment's traffic.
	pkts := nocdeploy.NetworkTraffic(sys, kept)
	fmt.Printf("\nNoC traffic: %d packets\n", len(pkts))
	if len(pkts) == 0 {
		return
	}
	st, err := nocdeploy.SimulateNoC(mesh, pkts, nocdeploy.NoCSimConfig{})
	if err != nil {
		log.Fatal(err)
	}
	var worst float64
	for _, r := range st.Results {
		if r.Latency > worst {
			worst = r.Latency
		}
	}
	fmt.Printf("worst packet latency: %.3g us (wormhole, with contention)\n", 1e6*worst)
	fmt.Printf("max link utilization: %.1f%%\n", 100*st.MaxLinkUtilization())
}

func commShare(m *nocdeploy.Metrics) float64 {
	var comm, tot float64
	for k := range m.CommEnergy {
		comm += m.CommEnergy[k]
		tot += m.CommEnergy[k] + m.CompEnergy[k]
	}
	if tot == 0 { //lint:allow floateq — guard against division by an exactly-zero sum
		return 0
	}
	return comm / tot
}
