// Automotive: a safety-critical engine-control application (the kind of
// workload the paper's introduction motivates) deployed under a tight
// reliability threshold. Compares the balance-energy (BE) scheme against
// the minimize-energy (ME) baseline and confirms the reliability target
// with Monte-Carlo fault injection.
package main

import (
	"fmt"
	"log"

	"nocdeploy"
)

// buildEngineControl returns a 12-task engine-management DAG: four wheel
// sensors fan into fusion, then parallel control paths (torque, traction),
// and finally actuation plus telemetry.
func buildEngineControl() (*nocdeploy.TaskGraph, []string) {
	g := nocdeploy.NewTaskGraph()
	names := []string{
		"wheelFL", "wheelFR", "wheelRL", "wheelRR",
		"fusion", "torque", "traction", "stability",
		"throttle", "brake", "telemetry", "watchdog",
	}
	// WCEC and deadlines: sensors are light, fusion/control heavier.
	wcec := []float64{
		0.6e6, 0.6e6, 0.6e6, 0.6e6,
		2.2e6, 1.8e6, 1.6e6, 1.4e6,
		0.9e6, 0.9e6, 1.1e6, 0.7e6,
	}
	for i, n := range names {
		g.AddTask(n, wcec[i], 0.9*wcec[i]/0.5e9)
	}
	edges := [][3]float64{
		{0, 4, 8 << 10}, {1, 4, 8 << 10}, {2, 4, 8 << 10}, {3, 4, 8 << 10},
		{4, 5, 16 << 10}, {4, 6, 16 << 10}, {4, 7, 12 << 10},
		{5, 8, 4 << 10}, {6, 9, 4 << 10}, {7, 9, 4 << 10},
		{5, 10, 2 << 10}, {4, 11, 1 << 10},
	}
	for _, e := range edges {
		g.AddEdge(int(e[0]), int(e[1]), e[2])
	}
	return g, names
}

func main() {
	plat := nocdeploy.DefaultPlatform(16)
	mesh := nocdeploy.DefaultMesh(4, 4)
	g, names := buildEngineControl()

	// Safety-critical threshold: five nines per task.
	rel := nocdeploy.DefaultReliability(plat.Fmin(), plat.Fmax())
	rel.Rth = 0.99999
	h, err := nocdeploy.Horizon(plat, mesh, g, rel, 1.6)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := nocdeploy.NewSystem(plat, mesh, g, rel, h)
	if err != nil {
		log.Fatal(err)
	}

	for _, scheme := range []nocdeploy.Objective{nocdeploy.BalanceEnergy, nocdeploy.MinimizeEnergy} {
		d, info, err := nocdeploy.Heuristic(sys, nocdeploy.Options{Objective: scheme}, 1)
		if err != nil {
			log.Fatal(err)
		}
		m, err := nocdeploy.ComputeMetrics(sys, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== scheme %v ==\n", scheme)
		fmt.Printf("feasible %v | max core %.4g mJ | total %.4g mJ | phi %.3g | replicas %d\n",
			info.Feasible, 1000*m.MaxEnergy, 1000*m.SumEnergy, m.Phi, m.Dups)

		if scheme == nocdeploy.BalanceEnergy {
			// Fault-injection campaign on the safety-relevant deployment.
			stats, err := nocdeploy.InjectFaults(sys, d, 200000, 42)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("fault injection (%d runs): system survival %.5f\n", stats.Runs, stats.SystemRate())
			fmt.Println("task       replicated  observed  threshold")
			for i, n := range names {
				rep := "no"
				if d.Exists[i+g.M()] {
					rep = "yes"
				}
				fmt.Printf("%-10s %-11s %.6f  %.6f\n", n, rep, stats.SurvivalRate(i), rel.Rth)
			}
		}
		fmt.Println()
	}
}
