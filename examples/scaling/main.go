// Scaling: the decomposition heuristic at growing problem sizes — the
// scalability claim the paper makes against the exact solver. Sweeps task
// counts and mesh sizes and reports runtime, objective and feasibility.
package main

import (
	"fmt"
	"log"

	"nocdeploy"
)

func main() {
	fmt.Println("mesh   M    feasible  runtime     maxE(mJ)  phi    dups")
	for _, mesh := range []struct{ w, h int }{{4, 4}, {6, 6}, {8, 8}} {
		for _, m := range []int{10, 20, 40, 60} {
			plat := nocdeploy.DefaultPlatform(mesh.w * mesh.h)
			nw := nocdeploy.DefaultMesh(mesh.w, mesh.h)
			g, err := nocdeploy.LayeredGraph(nocdeploy.DefaultGenParams(m, int64(m)), 6, 3)
			if err != nil {
				log.Fatal(err)
			}
			rel := nocdeploy.DefaultReliability(plat.Fmin(), plat.Fmax())
			h, err := nocdeploy.Horizon(plat, nw, g, rel, 1.3)
			if err != nil {
				log.Fatal(err)
			}
			sys, err := nocdeploy.NewSystem(plat, nw, g, rel, h)
			if err != nil {
				log.Fatal(err)
			}
			d, info, err := nocdeploy.Heuristic(sys, nocdeploy.Options{}, 1)
			if err != nil {
				log.Fatal(err)
			}
			met, err := nocdeploy.ComputeMetrics(sys, d)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%dx%d  %3d  %-8v  %-10v  %-8.3g  %-5.3g  %d\n",
				mesh.w, mesh.h, m, info.Feasible, info.Runtime.Round(10_000),
				1000*met.MaxEnergy, met.Phi, met.Dups)
		}
	}
}
