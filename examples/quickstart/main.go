// Quickstart: deploy a four-stage sensing pipeline on a 4×4 NoC multicore
// with the heuristic solver, validate the result and print the decisions.
package main

import (
	"fmt"
	"log"

	"nocdeploy"
)

func main() {
	// Platform: 16 DVFS cores on a 4×4 mesh.
	plat := nocdeploy.DefaultPlatform(16)
	mesh := nocdeploy.DefaultMesh(4, 4)

	// Application: sense → filter → plan → act, with a side logger.
	g := nocdeploy.NewTaskGraph()
	sense := g.AddTask("sense", 1.2e6, 0.004)
	filter := g.AddTask("filter", 2.0e6, 0.005)
	plan := g.AddTask("plan", 1.6e6, 0.005)
	act := g.AddTask("act", 0.8e6, 0.004)
	logger := g.AddTask("log", 0.6e6, 0.006)
	g.AddEdge(sense, filter, 16<<10)
	g.AddEdge(filter, plan, 8<<10)
	g.AddEdge(plan, act, 2<<10)
	g.AddEdge(filter, logger, 4<<10)

	// Reliability model and scheduling horizon (critical-path rule).
	rel := nocdeploy.DefaultReliability(plat.Fmin(), plat.Fmax())
	h, err := nocdeploy.Horizon(plat, mesh, g, rel, 1.5)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := nocdeploy.NewSystem(plat, mesh, g, rel, h)
	if err != nil {
		log.Fatal(err)
	}

	// Solve with the three-phase heuristic and validate.
	d, info, err := nocdeploy.Heuristic(sys, nocdeploy.Options{}, 1)
	if err != nil {
		log.Fatal(err)
	}
	m, err := nocdeploy.Validate(sys, d)
	if err != nil {
		log.Fatalf("deployment failed validation: %v", err)
	}

	fmt.Printf("feasible:     %v (solved in %v)\n", info.Feasible, info.Runtime)
	fmt.Printf("max core energy: %.4g mJ  total: %.4g mJ  balance phi: %.3g\n",
		1000*m.MaxEnergy, 1000*m.SumEnergy, m.Phi)
	fmt.Printf("duplicated tasks: %d   makespan: %.3g ms (horizon %.3g ms)\n\n",
		m.Dups, 1000*m.Makespan, 1000*sys.H)

	names := []string{"sense", "filter", "plan", "act", "log"}
	fmt.Println("task      core  freq(GHz)  start(ms)")
	for i, n := range names {
		fmt.Printf("%-8s  %4d  %9.2g  %9.3g\n",
			n, d.Proc[i], sys.Plat.Levels[d.Level[i]].Freq/1e9, 1000*d.Start[i])
		if d.Exists[i+g.M()] {
			fmt.Printf("%-8s  %4d  %9.2g  %9.3g   (reliability replica)\n",
				n+"'", d.Proc[i+g.M()], sys.Plat.Levels[d.Level[i+g.M()]].Freq/1e9,
				1000*d.Start[i+g.M()])
		}
	}
}
