// Package nocdeploy is an energy-efficient, real-time and reliable task
// deployment library for NoC-based multicores with DVFS, reproducing
// Mo, Zhou, Kritikakou and Liu, "Energy Efficient, Real-time and Reliable
// Task Deployment on NoC-based Multicores with DVFS" (DATE 2022).
//
// Given an application task graph, a 2D-mesh NoC platform with per-core
// DVFS, and a transient-fault reliability model, the library jointly
// decides:
//
//   - task allocation (which core runs each task),
//   - task scheduling (start times and per-core ordering),
//   - frequency assignment (a V/F level per task),
//   - task duplication (replicas for tasks below the reliability threshold),
//   - routing-path selection (energy- vs time-oriented NoC path per flow),
//
// minimizing the maximum per-core energy (or, as a baseline, the total
// energy) under per-task deadlines, a scheduling horizon and a reliability
// threshold.
//
// Two solvers are provided: Optimal, an exact mixed-integer formulation
// solved by the built-in branch & bound (packages internal/lp and
// internal/milp — a pure-Go stand-in for the Gurobi solver used in the
// paper), and Heuristic, the paper's three-phase decomposition, which
// scales to large instances with negligible runtime.
//
// # Quick start
//
//	plat := nocdeploy.DefaultPlatform(16) // 16 cores, 6 V/F levels
//	mesh := nocdeploy.DefaultMesh(4, 4)   // 4×4 2D mesh
//	g := nocdeploy.NewTaskGraph()
//	src := g.AddTask("sense", 1.2e6, 0.004)
//	dst := g.AddTask("act", 0.8e6, 0.004)
//	g.AddEdge(src, dst, 4096) // 4 KiB of data
//	rel := nocdeploy.DefaultReliability(plat.Fmin(), plat.Fmax())
//	h, _ := nocdeploy.Horizon(plat, mesh, g, rel, 1.5)
//	sys, _ := nocdeploy.NewSystem(plat, mesh, g, rel, h)
//	d, info, _ := nocdeploy.Heuristic(sys, nocdeploy.Options{}, 1)
//	metrics, _ := nocdeploy.Validate(sys, d)
//
// See the examples directory for complete programs and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology.
package nocdeploy

import (
	"nocdeploy/internal/core"
	"nocdeploy/internal/noc"
	"nocdeploy/internal/nocsim"
	"nocdeploy/internal/platform"
	"nocdeploy/internal/reliability"
	"nocdeploy/internal/sim"
	"nocdeploy/internal/task"
	"nocdeploy/internal/taskgen"
)

// Core problem and solution types.
type (
	// System bundles one deployment problem instance.
	System = core.System
	// Deployment is a complete joint decision (h, y, x, t^s, c).
	Deployment = core.Deployment
	// Metrics summarizes a deployment's energy, balance and timing.
	Metrics = core.Metrics
	// Options selects the objective and routing variant.
	Options = core.Options
	// Objective is BalanceEnergy (min–max) or MinimizeEnergy (min–sum).
	Objective = core.Objective
	// SolveInfo reports runtime, feasibility and solver statistics.
	SolveInfo = core.SolveInfo
	// OptimalOptions tunes the exact branch & bound solver.
	OptimalOptions = core.OptimalOptions
)

// Platform, network, application and fault-model types.
type (
	// Platform is the DVFS processor array.
	Platform = platform.Platform
	// VFLevel is one voltage/frequency operating point.
	VFLevel = platform.VFLevel
	// Mesh is the 2D-mesh NoC with precomputed candidate paths.
	Mesh = noc.Mesh
	// TaskGraph is the application DAG.
	TaskGraph = task.Graph
	// ReliabilityModel is the Poisson transient-fault model.
	ReliabilityModel = reliability.Model
	// GenParams bounds randomly generated workloads.
	GenParams = taskgen.Params
)

// Simulation types.
type (
	// ExecResult is the outcome of a discrete-event execution replay.
	ExecResult = sim.Result
	// FaultStats aggregates Monte-Carlo fault injection.
	FaultStats = sim.FaultStats
	// Packet is one NoC message for the flit-level simulator.
	Packet = nocsim.Packet
	// NoCSimConfig sets the flit-level simulator's constants.
	NoCSimConfig = nocsim.Config
	// NoCSimStats aggregates a flit-level simulation.
	NoCSimStats = nocsim.Stats
)

// Objectives.
const (
	// BalanceEnergy minimizes the maximum per-core energy (the paper's BE).
	BalanceEnergy = core.BalanceEnergy
	// MinimizeEnergy minimizes the total energy (the paper's ME baseline).
	MinimizeEnergy = core.MinimizeEnergy
)

// CommEstimate selects the heuristic's phase-2 communication pricing.
type CommEstimate = core.CommEstimate

// Communication-estimate variants.
const (
	// EstimatePathAverage prices placed edges with ρ-averaged real costs
	// (this repository's default; see DESIGN.md).
	EstimatePathAverage = core.EstimatePathAverage
	// EstimateConstant is the paper's literal allocation-independent
	// estimate, making Algorithm 2 communication-blind.
	EstimateConstant = core.EstimateConstant
)

// DefaultPlatform returns n identical processors with the default 6-level
// V/F table and power constants.
func DefaultPlatform(n int) *Platform { return platform.Default(n) }

// DefaultMesh returns a w×h mesh with default link costs and a small
// deterministic jitter (so energy- and time-oriented paths differ).
func DefaultMesh(w, h int) *Mesh { return noc.Default(w, h) }

// DefaultReliability returns the calibrated transient-fault model for the
// given frequency range.
func DefaultReliability(fmin, fmax float64) ReliabilityModel {
	return reliability.Default(fmin, fmax)
}

// NewTaskGraph returns an empty application DAG.
func NewTaskGraph() *TaskGraph { return task.New() }

// DefaultGenParams returns workload-generation bounds for m tasks.
func DefaultGenParams(m int, seed int64) GenParams { return taskgen.DefaultParams(m, seed) }

// LayeredGraph generates a layered random DAG (the evaluation's default
// application shape).
func LayeredGraph(p GenParams, maxWidth, maxFanIn int) (*TaskGraph, error) {
	return taskgen.Layered(p, maxWidth, maxFanIn)
}

// ForkJoinGraph generates a fork-join DAG.
func ForkJoinGraph(p GenParams) (*TaskGraph, error) { return taskgen.ForkJoin(p) }

// SeriesParallelGraph generates a series-parallel DAG.
func SeriesParallelGraph(p GenParams) (*TaskGraph, error) { return taskgen.SeriesParallel(p) }

// NewSystem assembles a problem instance; the platform size must match the
// mesh.
func NewSystem(plat *Platform, mesh *Mesh, g *TaskGraph, rel ReliabilityModel, horizon float64) (*System, error) {
	return core.NewSystem(plat, mesh, g, rel, horizon)
}

// Horizon computes the paper's critical-path horizon rule
// H = α·Σ_{i∈C}(t_i,ave^comp + t_i,ave^comm).
func Horizon(plat *Platform, mesh *Mesh, g *TaskGraph, rel ReliabilityModel, alpha float64) (float64, error) {
	return core.Horizon(plat, mesh, g, rel, alpha)
}

// Heuristic runs the paper's three-phase decomposition (Algorithms 1–3).
func Heuristic(s *System, opts Options, seed int64) (*Deployment, *SolveInfo, error) {
	return core.Heuristic(s, opts, seed)
}

// HeuristicWithRepair runs the heuristic and, on a horizon miss,
// iteratively raises V/F levels of late tasks and re-deploys (an extension
// beyond the paper; see DESIGN.md).
func HeuristicWithRepair(s *System, opts Options, seed int64, maxRounds int) (*Deployment, *SolveInfo, error) {
	return core.HeuristicWithRepair(s, opts, seed, maxRounds)
}

// Improve applies first-improvement local search (task reassignment and
// path flips) to a feasible deployment, returning the improved deployment,
// its objective and the number of accepted moves (an extension beyond the
// paper).
func Improve(s *System, d *Deployment, opts Options, maxMoves int) (*Deployment, float64, int) {
	return core.Improve(s, d, opts, maxMoves)
}

// ImprovePaths applies path-flip-only local search: multi-path refinement
// of a (typically single-path) deployment; the result is never worse than
// the input.
func ImprovePaths(s *System, d *Deployment, opts Options) (*Deployment, float64) {
	return core.ImprovePaths(s, d, opts)
}

// AnnealOptions tunes the simulated-annealing solver.
type AnnealOptions = core.AnnealOptions

// Anneal runs the simulated-annealing deployment solver, a metaheuristic
// baseline seeded by the repaired heuristic (an extension beyond the
// paper).
func Anneal(s *System, opts Options, ao AnnealOptions) (*Deployment, *SolveInfo, error) {
	return core.Anneal(s, opts, ao)
}

// Optimal solves the exact MILP formulation of problem P1 with the
// built-in branch & bound, within the configured limits.
func Optimal(s *System, opts Options, oo OptimalOptions) (*Deployment, *SolveInfo, error) {
	return core.Optimal(s, opts, oo)
}

// Validate checks a deployment against every constraint and returns its
// metrics; a nil error means the deployment is feasible.
func Validate(s *System, d *Deployment) (*Metrics, error) { return core.Validate(s, d) }

// ComputeMetrics computes metrics without judging timing feasibility.
func ComputeMetrics(s *System, d *Deployment) (*Metrics, error) {
	return core.ComputeMetrics(s, d)
}

// Execute replays a deployment in the discrete-event simulator.
func Execute(s *System, d *Deployment) (*ExecResult, error) { return sim.Execute(s, d) }

// InjectFaults runs a Monte-Carlo fault-injection campaign over the
// deployment.
func InjectFaults(s *System, d *Deployment, runs int, seed int64) (*FaultStats, error) {
	return sim.InjectFaults(s, d, runs, seed)
}

// NetworkTraffic extracts the NoC packets a deployment induces.
func NetworkTraffic(s *System, d *Deployment) []Packet { return sim.NetworkTraffic(s, d) }

// SimulateNoC transports packets through the flit-level wormhole simulator.
func SimulateNoC(mesh *Mesh, packets []Packet, cfg NoCSimConfig) (*NoCSimStats, error) {
	return nocsim.Simulate(mesh, packets, cfg)
}
