package nocdeploy_test

import (
	"fmt"

	"nocdeploy"
)

// Example deploys a two-stage pipeline and prints whether the deployment
// is feasible and how many reliability replicas were created.
func Example() {
	plat := nocdeploy.DefaultPlatform(16)
	mesh := nocdeploy.DefaultMesh(4, 4)
	g := nocdeploy.NewTaskGraph()
	producer := g.AddTask("producer", 1.2e6, 0.004)
	consumer := g.AddTask("consumer", 0.8e6, 0.004)
	g.AddEdge(producer, consumer, 4096)

	rel := nocdeploy.DefaultReliability(plat.Fmin(), plat.Fmax())
	h, err := nocdeploy.Horizon(plat, mesh, g, rel, 1.5)
	if err != nil {
		fmt.Println(err)
		return
	}
	sys, err := nocdeploy.NewSystem(plat, mesh, g, rel, h)
	if err != nil {
		fmt.Println(err)
		return
	}
	d, info, err := nocdeploy.Heuristic(sys, nocdeploy.Options{}, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := nocdeploy.Validate(sys, d); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("feasible: %v, replicas: %d\n", info.Feasible, d.DupCount())
	// Output: feasible: true, replicas: 2
}
